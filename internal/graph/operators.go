package graph

import (
	"unigpu/internal/ops"
	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

// The dense-compute and data-movement operators implement IntoOperator so
// the pooled runtime can execute them against preallocated arena buffers;
// the vision post-processing operators (dynamic-size sorting/suppression
// pipelines) keep the allocating Execute path.

// ConvOp is a 2-D convolution; inputs: data, weight[, bias][, residual].
//
// Kernel is the algorithm the kernel-selection pass (SelectConvKernels)
// chose for this workload; KernelAuto falls back to ops.DefaultKernel. The
// runtime prepacks weights for the effective kernel at plan time; the
// Execute/ExecuteInto paths prepare on the fly so the reference executor
// and the plan run the identical algorithm (and hence produce identical
// bits).
//
// Residual marks a fused residual add (FuseConvResidual): the node's last
// input is an output-shaped tensor summed into every element by the kernel
// epilogue — before the fused activation (ResNet conv→add→relu), or after
// it when ResidualPostAct is set (Darknet conv+act→add).
type ConvOp struct {
	W               ops.ConvWorkload
	Kernel          ops.ConvKernel
	Residual        bool
	ResidualPostAct bool
	// DType is the storage dtype the kernel computes over (QuantizeGraph):
	// the conv's data input must arrive in this dtype (the pass inserts
	// casts), weights are narrowed at prepack time, and accumulation stays
	// fp32 regardless.
	DType tensor.DType
}

func (o *ConvOp) Kind() string { return "conv2d" }

// SplitArgs resolves the optional bias and residual operands from the
// node's input values (data, weight[, bias][, residual]); either may be
// nil. ArgIndices is the index form the plan compiler precomputes.
func (o *ConvOp) SplitArgs(ins []*tensor.Tensor) (bias, residual *tensor.Tensor) {
	bi, ri := o.ArgIndices(len(ins))
	if bi >= 0 {
		bias = ins[bi]
	}
	if ri >= 0 {
		residual = ins[ri]
	}
	return bias, residual
}

// ArgIndices returns the input positions of the optional bias and residual
// operands for a node with n inputs (-1 when absent): the residual, when
// fused, is always the last input; a bias sits at index 2.
func (o *ConvOp) ArgIndices(n int) (bias, residual int) {
	bias, residual = -1, -1
	last := n - 1
	if o.Residual && last >= 2 {
		residual = last
		last--
	}
	if last >= 2 {
		bias = 2
	}
	return bias, residual
}

// EffectiveKernel resolves KernelAuto and unsupported choices to the
// concrete kernel that will actually run.
func (o *ConvOp) EffectiveKernel() ops.ConvKernel {
	k := o.Kernel
	if k == ops.KernelAuto {
		k = ops.DefaultKernel(o.W)
	}
	if !ops.KernelSupported(k, o.W) {
		k = ops.KernelDirect
	}
	return k
}

func (o *ConvOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{o.W.N, o.W.COut, o.W.OutH(), o.W.OutW()}
}
func (o *ConvOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	// A reduced-precision conv produces an fp16 carrier (int8 is a compute
	// format here, not a carrier: the epilogue dequantizes to real values).
	dt := tensor.Float32
	if o.DType != tensor.Float32 {
		dt = tensor.Float16
	}
	out := tensor.NewTyped(dt, o.W.N, o.W.COut, o.W.OutH(), o.W.OutW())
	o.ExecuteInto(out, ins)
	return out
}
func (o *ConvOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	bias, residual := o.SplitArgs(ins)
	ops.PrepareConvDType(o.W, o.Kernel, ins[1], o.DType).
		RunIntoEpilogue(out, ins[0], bias, residual, nil, nil, o.ResidualPostAct)
}
func (o *ConvOp) GPUFriendly() bool { return true }

// BatchNormOp is inference-mode batch normalization; inputs: data, gamma,
// beta, mean, variance. The fold pass removes it before execution.
type BatchNormOp struct{ Eps float32 }

func (o *BatchNormOp) Kind() string                               { return "batch_norm" }
func (o *BatchNormOp) InferShape(ins []tensor.Shape) tensor.Shape { return ins[0].Clone() }
func (o *BatchNormOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return ops.BatchNormInference(ins[0], ins[1], ins[2], ins[3], ins[4], o.Eps)
}
func (o *BatchNormOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.BatchNormInferenceInto(out, ins[0], ins[1], ins[2], ins[3], ins[4], o.Eps)
}
func (o *BatchNormOp) GPUFriendly() bool { return true }

// ActivationOp is an elementwise activation.
type ActivationOp struct {
	Act   ops.Activation // ActReLU or ActLeakyReLU
	Alpha float32        // leaky slope
}

func (o *ActivationOp) Kind() string {
	if o.Act == ops.ActLeakyReLU {
		return "leaky_relu"
	}
	return "relu"
}
func (o *ActivationOp) InferShape(ins []tensor.Shape) tensor.Shape { return ins[0].Clone() }
func (o *ActivationOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	if o.Act == ops.ActLeakyReLU {
		return ops.LeakyReLU(ins[0], o.Alpha)
	}
	return ops.ReLU(ins[0])
}
func (o *ActivationOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	if o.Act == ops.ActLeakyReLU {
		ops.LeakyReLUInto(out, ins[0], o.Alpha)
		return
	}
	ops.ReLUInto(out, ins[0])
}
func (o *ActivationOp) GPUFriendly() bool { return true }

// SigmoidOp is the logistic activation.
type SigmoidOp struct{}

func (o *SigmoidOp) Kind() string                                { return "sigmoid" }
func (o *SigmoidOp) InferShape(ins []tensor.Shape) tensor.Shape  { return ins[0].Clone() }
func (o *SigmoidOp) Execute(ins []*tensor.Tensor) *tensor.Tensor { return ops.Sigmoid(ins[0]) }
func (o *SigmoidOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.SigmoidInto(out, ins[0])
}
func (o *SigmoidOp) GPUFriendly() bool { return true }

// PoolOp is kernel×kernel max/avg pooling.
type PoolOp struct {
	PoolKind            ops.PoolKind
	Kernel, Stride, Pad int
}

func (o *PoolOp) Kind() string { return "pool2d" }
func (o *PoolOp) InferShape(ins []tensor.Shape) tensor.Shape {
	s := ins[0]
	oh := (s[2]+2*o.Pad-o.Kernel)/o.Stride + 1
	ow := (s[3]+2*o.Pad-o.Kernel)/o.Stride + 1
	return tensor.Shape{s[0], s[1], oh, ow}
}
func (o *PoolOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return ops.Pool2D(ins[0], o.PoolKind, o.Kernel, o.Stride, o.Pad)
}
func (o *PoolOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.Pool2DInto(out, ins[0], o.PoolKind, o.Kernel, o.Stride, o.Pad)
}
func (o *PoolOp) GPUFriendly() bool { return true }

// GlobalPoolOp reduces each channel plane to 1×1.
type GlobalPoolOp struct{}

func (o *GlobalPoolOp) Kind() string { return "global_avg_pool" }
func (o *GlobalPoolOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{ins[0][0], ins[0][1], 1, 1}
}
func (o *GlobalPoolOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return ops.GlobalAvgPool(ins[0])
}
func (o *GlobalPoolOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.GlobalAvgPoolInto(out, ins[0])
}
func (o *GlobalPoolOp) GPUFriendly() bool { return true }

// DenseOp is a fully connected layer; inputs: data, weight[, bias]. Act is
// an activation fused into the epilogue (FuseActivations), ActNone when the
// layer's output is used raw.
type DenseOp struct {
	Act ops.Activation
}

func (o *DenseOp) Kind() string { return "dense" }
func (o *DenseOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{ins[0][0], ins[1][0]}
}
func (o *DenseOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	out := tensor.New(ins[0].Shape()[0], ins[1].Shape()[0])
	o.ExecuteInto(out, ins)
	return out
}
func (o *DenseOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	var bias *tensor.Tensor
	if len(ins) > 2 {
		bias = ins[2]
	}
	ops.DenseActInto(out, ins[0], ins[1], bias, o.Act)
}
func (o *DenseOp) GPUFriendly() bool { return true }

// SoftmaxOp normalizes along the last axis.
type SoftmaxOp struct{}

func (o *SoftmaxOp) Kind() string                                { return "softmax" }
func (o *SoftmaxOp) InferShape(ins []tensor.Shape) tensor.Shape  { return ins[0].Clone() }
func (o *SoftmaxOp) Execute(ins []*tensor.Tensor) *tensor.Tensor { return ops.Softmax(ins[0]) }
func (o *SoftmaxOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.SoftmaxInto(out, ins[0])
}
func (o *SoftmaxOp) GPUFriendly() bool { return true }

// FlattenOp reshapes to (N, rest).
type FlattenOp struct{}

func (o *FlattenOp) Kind() string { return "flatten" }
func (o *FlattenOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{ins[0][0], ins[0].NumElements() / ins[0][0]}
}
func (o *FlattenOp) Execute(ins []*tensor.Tensor) *tensor.Tensor { return ops.Flatten(ins[0]) }
func (o *FlattenOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	// Row-major data is identical across the reshape, so copy raw storage
	// without materializing a reshaped view — the shapes differ only in
	// rank, and the session hot path must not allocate.
	in := ins[0]
	if out.DType() == in.DType() {
		switch out.DType() {
		case tensor.Float32:
			copy(out.Data(), in.Data())
		case tensor.Float16:
			copy(out.Half(), in.Half())
		case tensor.Int8:
			copy(out.Int8Data(), in.Int8Data())
			out.SetScale(in.Scale())
		}
		return
	}
	n := in.Size()
	for i := 0; i < n; i++ {
		out.SetF(i, in.GetF(i))
	}
}
func (o *FlattenOp) GPUFriendly() bool { return true }

// AddOp is an elementwise residual sum.
type AddOp struct{}

func (o *AddOp) Kind() string                                { return "add" }
func (o *AddOp) InferShape(ins []tensor.Shape) tensor.Shape  { return ins[0].Clone() }
func (o *AddOp) Execute(ins []*tensor.Tensor) *tensor.Tensor { return ops.Add(ins[0], ins[1]) }
func (o *AddOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.AddInto(out, ins[0], ins[1])
}
func (o *AddOp) GPUFriendly() bool { return true }

// FusedElementwiseOp is a chain of elementwise operators collapsed into a
// single memory pass (FuseElementwise). Inputs: the chain's source tensor,
// then one extra operand per EwAdd stage in order. Stage order is the
// original chain order, so results are bit-identical to running the chain
// as separate kernels.
type FusedElementwiseOp struct {
	Stages []ops.ElementwiseStage
}

func (o *FusedElementwiseOp) Kind() string                               { return "fused_elementwise" }
func (o *FusedElementwiseOp) InferShape(ins []tensor.Shape) tensor.Shape { return ins[0].Clone() }
func (o *FusedElementwiseOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	out := tensor.New(ins[0].Shape()...)
	o.ExecuteInto(out, ins)
	return out
}
func (o *FusedElementwiseOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.FusedElementwiseInto(out, ins[0], ins[1:], o.Stages)
}
func (o *FusedElementwiseOp) GPUFriendly() bool { return true }

// ConcatOp joins along axis 1 for rank-4 (channels) or rank-3 (detection
// rows) tensors.
type ConcatOp struct{}

func (o *ConcatOp) Kind() string { return "concat" }
func (o *ConcatOp) InferShape(ins []tensor.Shape) tensor.Shape {
	out := ins[0].Clone()
	for _, s := range ins[1:] {
		out[1] += s[1]
	}
	return out
}
func (o *ConcatOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	out := tensor.New(o.InferShape(shapesOf(ins))...)
	o.ExecuteInto(out, ins)
	return out
}
func (o *ConcatOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	if ins[0].Rank() == 4 {
		ops.ConcatInto(out, ins...)
		return
	}
	// Rank-3 detection concat: (batch, rows, width).
	s0 := ins[0].Shape()
	batch, width := s0[0], s0[2]
	total := out.Shape()[1]
	off := 0
	for _, t := range ins {
		rows := t.Shape()[1]
		for b := 0; b < batch; b++ {
			src := t.Data()[b*rows*width : (b+1)*rows*width]
			dst := out.Data()[(b*total+off)*width : (b*total+off+rows)*width]
			copy(dst, src)
		}
		off += rows
	}
}
func (o *ConcatOp) GPUFriendly() bool { return true }

// shapesOf collects the input shapes for shape inference at execute time.
func shapesOf(ins []*tensor.Tensor) []tensor.Shape {
	shapes := make([]tensor.Shape, len(ins))
	for i, t := range ins {
		shapes[i] = t.Shape()
	}
	return shapes
}

// UpsampleOp is 2x nearest-neighbour upsampling.
type UpsampleOp struct{}

func (o *UpsampleOp) Kind() string { return "upsample" }
func (o *UpsampleOp) InferShape(ins []tensor.Shape) tensor.Shape {
	s := ins[0]
	return tensor.Shape{s[0], s[1], 2 * s[2], 2 * s[3]}
}
func (o *UpsampleOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return ops.UpsampleNearest2x(ins[0])
}
func (o *UpsampleOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	ops.UpsampleNearest2xInto(out, ins[0])
}
func (o *UpsampleOp) GPUFriendly() bool { return true }

// BoxNMSOp is the vision-specific non-maximum suppression (§3.1.1).
type BoxNMSOp struct{ Cfg vision.NMSConfig }

func (o *BoxNMSOp) Kind() string                               { return "box_nms" }
func (o *BoxNMSOp) InferShape(ins []tensor.Shape) tensor.Shape { return ins[0].Clone() }
func (o *BoxNMSOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return vision.BoxNMS(ins[0], o.Cfg)
}
func (o *BoxNMSOp) GPUFriendly() bool { return true }

// MultiboxDetectionOp decodes SSD heads; inputs: clsProb, locPred, anchors.
type MultiboxDetectionOp struct{ Cfg vision.NMSConfig }

func (o *MultiboxDetectionOp) Kind() string { return "multibox_detection" }
func (o *MultiboxDetectionOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{ins[0][0], ins[0][2], vision.DetWidth}
}
func (o *MultiboxDetectionOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return vision.MultiboxDetection(ins[0], ins[1], ins[2], o.Cfg)
}
func (o *MultiboxDetectionOp) GPUFriendly() bool { return true }

// YoloDecodeOp decodes one YOLOv3 head.
type YoloDecodeOp struct {
	Anchors    [][2]float32
	NumClasses int
	Stride     int
}

func (o *YoloDecodeOp) Kind() string { return "yolo_decode" }
func (o *YoloDecodeOp) InferShape(ins []tensor.Shape) tensor.Shape {
	s := ins[0]
	return tensor.Shape{s[0], s[2] * s[3] * len(o.Anchors), vision.DetWidth}
}
func (o *YoloDecodeOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return vision.YoloDecode(ins[0], o.Anchors, o.NumClasses, o.Stride)
}
func (o *YoloDecodeOp) GPUFriendly() bool { return true }

// ROIAlignOp extracts pooled region features; inputs: features, rois.
type ROIAlignOp struct {
	PooledH, PooledW int
	SpatialScale     float32
	SamplingRatio    int
}

func (o *ROIAlignOp) Kind() string { return "roi_align" }
func (o *ROIAlignOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{ins[1][0], ins[0][1], o.PooledH, o.PooledW}
}
func (o *ROIAlignOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	return vision.ROIAlign(ins[0], ins[1], o.PooledH, o.PooledW, o.SpatialScale, o.SamplingRatio)
}
func (o *ROIAlignOp) GPUFriendly() bool { return true }

// DeviceCopyOp is inserted by the placement pass between nodes on
// different devices (§3.1.2). Functionally the identity; the runtime
// charges it the CPU<->GPU handoff cost.
type DeviceCopyOp struct{ To DeviceClass }

func (o *DeviceCopyOp) Kind() string { return "device_copy" }
func (o *DeviceCopyOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return ins[0].Clone()
}
func (o *DeviceCopyOp) Execute(ins []*tensor.Tensor) *tensor.Tensor { return ins[0].Clone() }
func (o *DeviceCopyOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	tensor.Copy(out, ins[0])
}
func (o *DeviceCopyOp) GPUFriendly() bool { return true }

// CastOp converts its input to the target storage dtype, inserted by
// QuantizeGraph at precision boundaries. Functionally near-identity:
// narrowing to fp16 rounds each element to nearest-even; narrowing to int8
// quantizes symmetrically under Scale (set from calibration). Widening is
// exact.
type CastOp struct {
	To    tensor.DType
	Scale float32 // Int8 target's dequantization scale
}

func (o *CastOp) Kind() string                               { return "cast" }
func (o *CastOp) InferShape(ins []tensor.Shape) tensor.Shape { return ins[0].Clone() }
func (o *CastOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	out := tensor.NewTyped(o.To, ins[0].Shape()...)
	if o.To == tensor.Int8 {
		out.SetScale(o.Scale)
	}
	tensor.Copy(out, ins[0])
	return out
}
func (o *CastOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	if out.DType() == tensor.Int8 {
		out.SetScale(o.Scale)
	}
	tensor.Copy(out, ins[0])
}
func (o *CastOp) GPUFriendly() bool { return true }
