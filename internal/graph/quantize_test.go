package graph

import (
	"testing"

	"unigpu/internal/ops"
	"unigpu/internal/tensor"
)

func quantWorkload(cin, cout int) ops.ConvWorkload {
	return ops.ConvWorkload{N: 1, CIn: cin, COut: cout, H: 8, W: 8, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
}

func quantWeight(seed int64, cout, cin int) *tensor.Tensor {
	w := tensor.New(cout, cin, 3, 3)
	w.FillRandom(seed)
	return w
}

// buildQuantGraph: conv -> relu -> conv -> global pool -> flatten ->
// dense -> softmax, the classification tail every zoo model ends with.
func buildQuantGraph() *Graph {
	g := New()
	in := g.Input("data", 1, 4, 8, 8)
	c1 := g.Apply("c1", &ConvOp{W: quantWorkload(4, 8)}, in, g.Constant("w1", quantWeight(1, 8, 4)))
	r1 := g.Apply("r1", &ActivationOp{Act: ops.ActReLU}, c1)
	c2 := g.Apply("c2", &ConvOp{W: quantWorkload(8, 8)}, r1, g.Constant("w2", quantWeight(2, 8, 8)))
	gp := g.Apply("gp", &GlobalPoolOp{}, c2)
	fl := g.Apply("fl", &FlattenOp{}, gp)
	dw := tensor.New(10, 8)
	dw.FillRandom(3)
	d := g.Apply("fc", &DenseOp{}, fl, g.Constant("fcw", dw))
	sm := g.Apply("sm", &SoftmaxOp{}, d)
	g.SetOutputs(sm)
	return g
}

// TestQuantizeOffNoOp: QuantOff must leave the graph untouched — same
// node count, every node full precision, zero stats.
func TestQuantizeOffNoOp(t *testing.T) {
	g := buildQuantGraph()
	nodes := len(g.Nodes)
	st, err := QuantizeGraph(g, QuantizeOptions{Mode: QuantOff})
	if err != nil {
		t.Fatal(err)
	}
	if st != (QuantizeStats{}) {
		t.Fatalf("QuantOff produced stats %+v", st)
	}
	if len(g.Nodes) != nodes {
		t.Fatalf("QuantOff changed node count %d -> %d", nodes, len(g.Nodes))
	}
	for _, n := range g.Nodes {
		if n.StorageDType() != tensor.Float32 {
			t.Fatalf("node %s dtype %v after QuantOff", n.Name, n.StorageDType())
		}
	}
}

// TestQuantizeFP16Legality: after fp16 lowering every conv's data input
// matches its compute dtype exactly, graph outputs stay float32, the
// fp32-only dense/softmax tail sees float32, and the conv fed by an
// fp16 carrier needs no explicit cast (it fused into the producer).
func TestQuantizeFP16Legality(t *testing.T) {
	g := buildQuantGraph()
	st, err := QuantizeGraph(g, QuantizeOptions{Mode: QuantFP16})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range g.Outputs {
		if o.StorageDType() != tensor.Float32 {
			t.Fatalf("output %s dtype %v, want float32", o.Name, o.StorageDType())
		}
	}
	for _, n := range g.OpNodes() {
		kind := n.Op.Kind()
		if convOp, ok := opAs[*ConvOp](n); ok {
			if got := n.Inputs[0].StorageDType(); got != convOp.DType {
				t.Fatalf("conv %s arg0 dtype %v, compute dtype %v", n.Name, got, convOp.DType)
			}
		}
		if fp32OnlyKinds[kind] && kind != "device_copy" && kind != "cast" {
			for _, in := range n.Inputs {
				// Weight constants may ride fp16 (the kernels widen them
				// on load); only activations must arrive full precision.
				if in.IsConstant() {
					continue
				}
				if in.StorageDType() != tensor.Float32 {
					t.Fatalf("fp32-only %s %s sees %v input %s", kind, n.Name, in.StorageDType(), in.Name)
				}
			}
		}
	}
	if st.FP16Convs != 2 {
		t.Fatalf("FP16Convs = %d, want 2", st.FP16Convs)
	}
	// c2 reads the retagged relu carrier: its cast fused into the store.
	if st.CastsFused != 1 {
		t.Fatalf("CastsFused = %d, want 1", st.CastsFused)
	}
	// c1 reads the fp32 graph input, and dense reads the fp16 flatten
	// carrier: both need explicit casts.
	if st.CastsInserted != 2 {
		t.Fatalf("CastsInserted = %d, want 2", st.CastsInserted)
	}
	// The dense weight constant (single consumer) rides binary16.
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "dense" {
			if got := n.Inputs[1].StorageDType(); got != tensor.Float16 {
				t.Fatalf("dense weight dtype %v, want float16", got)
			}
		}
	}
}

// TestQuantizeINT8CastDedup: two convs consuming the same tensor share
// one int8 cast, and its calibrated scale is positive.
func TestQuantizeINT8CastDedup(t *testing.T) {
	g := New()
	in := g.Input("data", 1, 4, 8, 8)
	r := g.Apply("r", &ActivationOp{Act: ops.ActReLU}, in)
	ca := g.Apply("ca", &ConvOp{W: quantWorkload(4, 8)}, r, g.Constant("wa", quantWeight(4, 8, 4)))
	cb := g.Apply("cb", &ConvOp{W: quantWorkload(4, 8)}, r, g.Constant("wb", quantWeight(5, 8, 4)))
	g.SetOutputs(ca, cb)

	st, err := QuantizeGraph(g, QuantizeOptions{Mode: QuantINT8})
	if err != nil {
		t.Fatal(err)
	}
	if st.INT8Convs != 2 {
		t.Fatalf("INT8Convs = %d, want 2", st.INT8Convs)
	}
	if st.CastsInserted != 1 {
		t.Fatalf("shared tensor got %d casts, want 1 (deduplicated)", st.CastsInserted)
	}
	if ca.Inputs[0] != cb.Inputs[0] {
		t.Fatal("convs do not share the deduplicated cast node")
	}
	cast := ca.Inputs[0]
	castOp := opMust[*CastOp](t, cast)
	if castOp.To != tensor.Int8 {
		t.Fatalf("cast target %v, want int8", castOp.To)
	}
	if castOp.Scale <= 0 || cast.QScale != castOp.Scale {
		t.Fatalf("calibrated scale %g (node %g), want positive and consistent",
			castOp.Scale, cast.QScale)
	}
}

// TestQuantizeNoCastAcrossDeviceCopy: quantizing an already-placed graph
// must put every cast on the consumer side of a copy — no cast node may
// feed a device_copy, and a cast always shares its consumers' device.
func TestQuantizeNoCastAcrossDeviceCopy(t *testing.T) {
	g := New()
	in := g.Input("data", 1, 4, 8, 8)
	c1 := g.Apply("c1", &ConvOp{W: quantWorkload(4, 8)}, in, g.Constant("w1", quantWeight(6, 8, 4)))
	sg := g.Apply("sg", &SigmoidOp{}, c1)
	c2 := g.Apply("c2", &ConvOp{W: quantWorkload(8, 8)}, sg, g.Constant("w2", quantWeight(7, 8, 8)))
	g.SetOutputs(c2)

	copies := PlaceDevices(g, PlacementOptions{FallbackKinds: map[string]bool{"sigmoid": true}})
	if copies == 0 {
		t.Fatal("placement inserted no device copies; test graph is wrong")
	}
	if _, err := QuantizeGraph(g, QuantizeOptions{Mode: QuantINT8}); err != nil {
		t.Fatal(err)
	}

	casts := 0
	cons := g.Consumers()
	for _, n := range g.OpNodes() {
		if n.Op.Kind() != "cast" {
			continue
		}
		casts++
		for _, c := range cons[n] {
			if c.Op != nil && c.Op.Kind() == "device_copy" {
				t.Fatalf("cast %s feeds device_copy %s: cast crossed the bus", n.Name, c.Name)
			}
			if c.Device != n.Device {
				t.Fatalf("cast %s on %v but consumer %s on %v", n.Name, n.Device, c.Name, c.Device)
			}
		}
	}
	if casts == 0 {
		t.Fatal("int8 lowering of a placed graph inserted no casts")
	}
}

// TestQuantizeCalibrationDeterministic: identical graphs quantized with
// identical options calibrate to identical int8 scales.
func TestQuantizeCalibrationDeterministic(t *testing.T) {
	scales := func() map[string]float32 {
		g := buildQuantGraph()
		if _, err := QuantizeGraph(g, QuantizeOptions{Mode: QuantINT8, CalibBatches: 3}); err != nil {
			t.Fatal(err)
		}
		m := map[string]float32{}
		for _, n := range g.OpNodes() {
			if op, ok := opAs[*CastOp](n); ok && op.To == tensor.Int8 {
				m[n.Name] = op.Scale
			}
		}
		return m
	}
	a, b := scales(), scales()
	if len(a) == 0 {
		t.Fatal("no int8 casts to compare")
	}
	for name, s := range a {
		if b[name] != s {
			t.Fatalf("cast %s scale %g vs %g across identical runs", name, s, b[name])
		}
	}
}

// TestQuantizeAutoDefaultsToFP16: with no device model, auto mode has no
// roofline to consult and must fall back to the safe fp16 assignment.
func TestQuantizeAutoDefaultsToFP16(t *testing.T) {
	g := buildQuantGraph()
	st, err := QuantizeGraph(g, QuantizeOptions{Mode: QuantAuto})
	if err != nil {
		t.Fatal(err)
	}
	if st.FP16Convs != 2 || st.INT8Convs != 0 {
		t.Fatalf("auto without device: fp16=%d int8=%d, want 2/0", st.FP16Convs, st.INT8Convs)
	}
}
