package graph

import (
	"testing"

	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

func TestHeadReshapeOrdering(t *testing.T) {
	// (1, A*K, h, w) -> (1, h*w*A, K), cell-major anchor-minor: the exact
	// ordering MultiboxPrior emits.
	a, k, h, w := 2, 3, 2, 2
	op := &HeadReshapeOp{Anchors: a, Attrs: k}
	in := tensor.New(1, a*k, h, w)
	// Value encodes (anchor, attr, y, x) uniquely.
	for ai := 0; ai < a; ai++ {
		for ki := 0; ki < k; ki++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					in.Set(float32(ai*1000+ki*100+y*10+x), 0, ai*k+ki, y, x)
				}
			}
		}
	}
	out := op.Execute([]*tensor.Tensor{in})
	if !out.Shape().Equal(tensor.Shape{1, h * w * a, k}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for ai := 0; ai < a; ai++ {
				row := (y*w+x)*a + ai
				for ki := 0; ki < k; ki++ {
					want := float32(ai*1000 + ki*100 + y*10 + x)
					if got := out.At(0, row, ki); got != want {
						t.Fatalf("row %d attr %d = %v, want %v", row, ki, got, want)
					}
				}
			}
		}
	}
	// InferShape agrees with Execute.
	if !op.InferShape([]tensor.Shape{in.Shape()}).Equal(out.Shape()) {
		t.Fatal("InferShape mismatch")
	}
}

func TestSSDDetectionOpMatchesVisionKernel(t *testing.T) {
	// Rows-layout decode must agree with the (classes, anchors) layout
	// vision kernel it adapts.
	numAnchors, numClasses := 4, 3 // incl. background
	clsRows := tensor.New(1, numAnchors, numClasses)
	clsRows.FillFunc(func(i int) float32 { return float32((i*7)%10) / 10 })
	locRows := tensor.New(1, numAnchors, 4)
	locRows.FillRandom(3)
	anchors := tensor.New(1, numAnchors, 4)
	for i := 0; i < numAnchors; i++ {
		anchors.Set(float32(i)*0.2, 0, i, 0)
		anchors.Set(0.1, 0, i, 1)
		anchors.Set(float32(i)*0.2+0.15, 0, i, 2)
		anchors.Set(0.3, 0, i, 3)
	}
	cfg := vision.NMSConfig{IoUThreshold: 0.5, ScoreThreshold: 0.05}
	op := &SSDDetectionOp{Cfg: cfg}
	got := op.Execute([]*tensor.Tensor{clsRows, locRows, anchors})

	clsProb := tensor.New(1, numClasses, numAnchors)
	for a := 0; a < numAnchors; a++ {
		for c := 0; c < numClasses; c++ {
			clsProb.Set(clsRows.At(0, a, c), 0, c, a)
		}
	}
	want := vision.MultiboxDetection(clsProb, locRows.Reshape(1, numAnchors*4), anchors, cfg)
	if !tensor.AllClose(got, want, 1e-6) {
		t.Fatalf("SSDDetectionOp diverges from vision kernel: %g", tensor.MaxAbsDiff(got, want))
	}
	if !op.InferShape([]tensor.Shape{clsRows.Shape(), locRows.Shape(), anchors.Shape()}).Equal(got.Shape()) {
		t.Fatal("InferShape mismatch")
	}
}

func TestDetectionOpsAreGPUFriendly(t *testing.T) {
	// §3.1.1: these are the operators this work makes GPU-resident.
	for _, op := range []Operator{
		&HeadReshapeOp{Anchors: 1, Attrs: 1},
		&SSDDetectionOp{},
		&BoxNMSOp{},
		&YoloDecodeOp{Anchors: [][2]float32{{1, 1}}, NumClasses: 1, Stride: 8},
		&ROIAlignOp{PooledH: 1, PooledW: 1, SpatialScale: 1},
	} {
		if !op.GPUFriendly() {
			t.Errorf("%s should be GPU friendly in the optimized stack", op.Kind())
		}
	}
}
