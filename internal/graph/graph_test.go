package graph_test

import (
	"testing"

	"unigpu/internal/graph"
	"unigpu/internal/ops"
	"unigpu/internal/runtime"
	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

// buildConvBNReLU builds data -> conv -> bn -> relu -> softmax-ish chain.
func buildConvBNReLU() (*graph.Graph, *tensor.Tensor) {
	g := graph.New()
	in := g.Input("data", 1, 3, 8, 8)
	wl := ops.ConvWorkload{N: 1, CIn: 3, H: 8, W: 8, COut: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(4, 3, 3, 3)
	w.FillRandom(1)
	conv := g.Apply("conv0", &graph.ConvOp{W: wl}, in, g.Constant("w0", w))

	c := 4
	gamma, beta, mean, variance := tensor.New(c), tensor.New(c), tensor.New(c), tensor.New(c)
	gamma.FillFunc(func(i int) float32 { return 1 + float32(i)*0.1 })
	beta.FillRandom(2)
	mean.FillRandom(3)
	variance.FillFunc(func(i int) float32 { return 0.7 + float32(i)*0.05 })
	bn := g.Apply("bn0", &graph.BatchNormOp{Eps: 1e-5},
		conv, g.Constant("gamma", gamma), g.Constant("beta", beta),
		g.Constant("mean", mean), g.Constant("var", variance))
	relu := g.Apply("relu0", &graph.ActivationOp{Act: ops.ActReLU}, bn)
	g.SetOutputs(relu)

	feed := tensor.New(1, 3, 8, 8)
	feed.FillRandom(7)
	return g, feed
}

func runGraph(t *testing.T, g *graph.Graph, feed *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res.Outputs[0]
}

func TestGraphValidate(t *testing.T) {
	g, _ := buildConvBNReLU()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFoldBatchNormPreservesSemantics(t *testing.T) {
	g, feed := buildConvBNReLU()
	want := runGraph(t, g, feed)

	folded := graph.FoldBatchNorm(g)
	if folded != 1 {
		t.Fatalf("folded %d batch norms, want 1", folded)
	}
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "batch_norm" {
			t.Fatal("batch_norm still present after folding")
		}
	}
	got := runGraph(t, g, feed)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("folding changed results: max diff %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestFuseActivationsPreservesSemantics(t *testing.T) {
	g, feed := buildConvBNReLU()
	want := runGraph(t, g, feed)

	graph.FoldBatchNorm(g)
	fused := graph.FuseActivations(g)
	if fused != 1 {
		t.Fatalf("fused %d activations, want 1", fused)
	}
	stats := g.Summary()
	if stats.Convs != 1 {
		t.Fatalf("conv count = %d", stats.Convs)
	}
	for _, n := range g.OpNodes() {
		if n.Op.Kind() == "relu" {
			t.Fatal("relu still present after fusion")
		}
	}
	got := runGraph(t, g, feed)
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("fusion changed results: max diff %g", tensor.MaxAbsDiff(got, want))
	}
}

func TestFuseSkipsMultiConsumerConv(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 2, 4, 4)
	wl := ops.ConvWorkload{N: 1, CIn: 2, H: 4, W: 4, COut: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	w := tensor.New(2, 2, 1, 1)
	w.FillRandom(5)
	conv := g.Apply("conv", &graph.ConvOp{W: wl}, in, g.Constant("w", w))
	relu := g.Apply("relu", &graph.ActivationOp{Act: ops.ActReLU}, conv)
	// conv also feeds a residual add, so fusing relu into it would be wrong.
	add := g.Apply("add", &graph.AddOp{}, relu, conv)
	g.SetOutputs(add)
	if fused := graph.FuseActivations(g); fused != 0 {
		t.Fatalf("must not fuse into a multi-consumer conv, fused %d", fused)
	}
}

func TestPrecomputeConstants(t *testing.T) {
	g := graph.New()
	a := tensor.New(1, 2, 2, 2)
	a.Fill(1)
	b := tensor.New(1, 2, 2, 2)
	b.Fill(2)
	sum := g.Apply("constsum", &graph.AddOp{}, g.Constant("a", a), g.Constant("b", b))
	in := g.Input("data", 1, 2, 2, 2)
	out := g.Apply("live", &graph.AddOp{}, in, sum)
	g.SetOutputs(out)

	if n := graph.PrecomputeConstants(g); n != 1 {
		t.Fatalf("precomputed %d, want 1", n)
	}
	for _, n := range g.OpNodes() {
		if n.Name == "constsum" {
			t.Fatal("constant subgraph should have been replaced")
		}
	}
	feed := tensor.New(1, 2, 2, 2)
	feed.Fill(10)
	got := runGraph(t, g, feed)
	if got.At(0, 0, 0, 0) != 13 {
		t.Fatalf("result = %v, want 13", got.At(0, 0, 0, 0))
	}
}

func TestEliminateDead(t *testing.T) {
	g, _ := buildConvBNReLU()
	// Add an unused branch.
	in := g.Nodes[0]
	g.Apply("deadrelu", &graph.ActivationOp{Act: ops.ActReLU}, in)
	if removed := g.EliminateDead(); removed != 1 {
		t.Fatalf("removed %d dead nodes, want 1", removed)
	}
}

func TestPlaceDevicesFallback(t *testing.T) {
	g := graph.New()
	in := g.Input("dets", 1, 16, 6)
	nms := g.Apply("nms", &graph.BoxNMSOp{Cfg: vision.NMSConfig{IoUThreshold: 0.5}}, in)
	// A GPU-friendly op after the fallback op forces a copy back.
	post := g.Apply("post", &graph.ConcatOp{}, nms)
	g.SetOutputs(post)

	copies := graph.PlaceDevices(g, graph.PlacementOptions{
		FallbackKinds: map[string]bool{"box_nms": true},
	})
	if copies != 1 {
		t.Fatalf("copies inserted = %d, want 1 (nms->post)", copies)
	}
	stats := g.Summary()
	if stats.OnCPU != 1 {
		t.Fatalf("nodes on CPU = %d, want 1", stats.OnCPU)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("graph invalid after placement: %v", err)
	}
	if graph.CopyBytes(g) != float64(4*16*6) {
		t.Fatalf("copy bytes = %v", graph.CopyBytes(g))
	}
	// Execution still works and device_copy is the identity.
	feed := tensor.New(1, 16, 6)
	for i := 0; i < 16; i++ {
		feed.Set(-1, 0, i, 0)
	}
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"dets": feed})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatal("missing output")
	}
}

func TestPlaceAllGPUWhenOptimized(t *testing.T) {
	g := graph.New()
	in := g.Input("dets", 1, 8, 6)
	nms := g.Apply("nms", &graph.BoxNMSOp{Cfg: vision.NMSConfig{IoUThreshold: 0.5}}, in)
	g.SetOutputs(nms)
	copies := graph.PlaceDevices(g, graph.PlacementOptions{})
	if copies != 0 {
		t.Fatalf("optimized stack runs NMS on GPU; copies = %d", copies)
	}
	if g.Summary().OnCPU != 0 {
		t.Fatal("nothing should fall back by default")
	}
}

func TestRuntimeMemoryPlanning(t *testing.T) {
	// A linear chain frees intermediates; peak live should be ~2 tensors,
	// not the whole chain.
	g := graph.New()
	in := g.Input("data", 1, 8, 16, 16)
	cur := in
	for i := 0; i < 10; i++ {
		cur = g.Apply("relu"+string(rune('0'+i)), &graph.ActivationOp{Act: ops.ActReLU}, cur)
	}
	g.SetOutputs(cur)
	feed := tensor.New(1, 8, 16, 16)
	res, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": feed})
	if err != nil {
		t.Fatal(err)
	}
	one := feed.Bytes()
	if res.PeakLive > 3*one {
		t.Fatalf("peak live %d bytes; memory planner should free intermediates (one tensor = %d)", res.PeakLive, one)
	}
	if len(res.Profile) != 10 {
		t.Fatalf("profile entries = %d", len(res.Profile))
	}
}

func TestRuntimeErrors(t *testing.T) {
	g := graph.New()
	in := g.Input("data", 1, 2)
	g.SetOutputs(in)
	if _, err := runtime.Execute(g, nil); err == nil {
		t.Fatal("missing feed must error")
	}
	bad := tensor.New(2, 2)
	if _, err := runtime.Execute(g, map[string]*tensor.Tensor{"data": bad}); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestTotalConvFLOPs(t *testing.T) {
	g, _ := buildConvBNReLU()
	want := (&ops.ConvWorkload{N: 1, CIn: 3, H: 8, W: 8, COut: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}).FLOPs()
	if got := graph.TotalConvFLOPs(g); got != want {
		t.Fatalf("conv flops = %v, want %v", got, want)
	}
}
