package graph

import (
	"unigpu/internal/tensor"
	"unigpu/internal/vision"
)

// HeadReshapeOp rearranges one detection-head conv output
// (1, A*K, h, w) into per-anchor rows (1, h*w*A, K), cell-major and
// anchor-minor — the ordering MultiboxPrior emits. This is the
// transpose+flatten the SSD head performs between its convolutions and
// the multibox decoder.
type HeadReshapeOp struct {
	Anchors int // A
	Attrs   int // K
}

func (o *HeadReshapeOp) Kind() string { return "head_reshape" }
func (o *HeadReshapeOp) InferShape(ins []tensor.Shape) tensor.Shape {
	s := ins[0]
	return tensor.Shape{s[0], s[2] * s[3] * o.Anchors, o.Attrs}
}
func (o *HeadReshapeOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	s := ins[0].Shape()
	out := tensor.New(s[0], s[2]*s[3]*o.Anchors, o.Attrs)
	o.ExecuteInto(out, ins)
	return out
}
func (o *HeadReshapeOp) ExecuteInto(out *tensor.Tensor, ins []*tensor.Tensor) {
	in := ins[0]
	s := in.Shape()
	batch, h, w := s[0], s[2], s[3]
	for b := 0; b < batch; b++ {
		for a := 0; a < o.Anchors; a++ {
			for k := 0; k < o.Attrs; k++ {
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						row := (y*w+x)*o.Anchors + a
						out.Set(in.At(b, a*o.Attrs+k, y, x), b, row, k)
					}
				}
			}
		}
	}
}
func (o *HeadReshapeOp) GPUFriendly() bool { return true }

// SSDDetectionOp decodes SSD heads given per-anchor rows; inputs:
// clsRows (batch, anchors, classes+1) softmaxed scores with class 0 =
// background, locRows (batch, anchors, 4), anchors (1, anchors, 4).
type SSDDetectionOp struct{ Cfg vision.NMSConfig }

func (o *SSDDetectionOp) Kind() string { return "multibox_detection" }
func (o *SSDDetectionOp) InferShape(ins []tensor.Shape) tensor.Shape {
	return tensor.Shape{ins[0][0], ins[0][1], vision.DetWidth}
}
func (o *SSDDetectionOp) Execute(ins []*tensor.Tensor) *tensor.Tensor {
	clsRows, locRows, anchors := ins[0], ins[1], ins[2]
	s := clsRows.Shape()
	batch, num, k := s[0], s[1], s[2]
	// Transpose rows into the (batch, classes, anchors) layout the vision
	// kernel consumes.
	clsProb := tensor.New(batch, k, num)
	for b := 0; b < batch; b++ {
		for a := 0; a < num; a++ {
			for c := 0; c < k; c++ {
				clsProb.Set(clsRows.At(b, a, c), b, c, a)
			}
		}
	}
	loc := locRows.Reshape(batch, num*4)
	return vision.MultiboxDetection(clsProb, loc, anchors, o.Cfg)
}
func (o *SSDDetectionOp) GPUFriendly() bool { return true }
