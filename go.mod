module unigpu

go 1.22
