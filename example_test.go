package unigpu_test

import (
	"fmt"

	"unigpu"
)

// The evaluation setup of the paper: six models on three platforms.
func Example() {
	for _, name := range unigpu.ModelNames() {
		fmt.Println(name)
	}
	for _, p := range unigpu.Platforms() {
		fmt.Printf("%s: %s + %s (GPU:CPU peak %.2fx)\n",
			p.Name, p.GPU.Name, p.CPU.Name, p.PeakRatio())
	}
	// Output:
	// ResNet50_v1
	// MobileNet1.0
	// SqueezeNet1.0
	// SSD_MobileNet1.0
	// SSD_ResNet50
	// Yolov3
	// AWS DeepLens: Intel HD Graphics 505 + Intel Atom x5-E3930 (GPU:CPU peak 5.16x)
	// Acer aiSage: ARM Mali T-860 MP4 + RK3399 Cortex-A72 (GPU:CPU peak 6.75x)
	// Nvidia Jetson Nano: Nvidia Maxwell 128-core + Jetson Nano Cortex-A57 (GPU:CPU peak 2.48x)
}

// Compiling a model yields a latency prediction and a runnable artifact.
func ExampleEngine_Compile() {
	eng := unigpu.NewEngine()
	cm, err := eng.Compile("SqueezeNet1.0", unigpu.JetsonNano, unigpu.CompileOptions{InputSize: 64})
	if err != nil {
		panic(err)
	}
	fmt.Println(cm.Name, "compiled for", cm.Platform.Name)
	fmt.Println("latency prediction is positive:", cm.PredictedLatencyMs > 0)
	fmt.Println("input shape:", cm.InputShape())
	// Output:
	// SqueezeNet1.0 compiled for Nvidia Jetson Nano
	// latency prediction is positive: true
	// input shape: [1 3 64 64]
}
