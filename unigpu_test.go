package unigpu

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestCompileAndRunClassification(t *testing.T) {
	eng := NewEngine()
	cm, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{InputSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if cm.PredictedLatencyMs <= 0 {
		t.Fatal("latency must be positive")
	}
	in := NewTensor(cm.InputShape()...)
	in.FillRandom(1)
	out, err := cm.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestCompileUnknownModel(t *testing.T) {
	if _, err := NewEngine().Compile("VGG", DeepLens, CompileOptions{}); err == nil {
		t.Fatal("unknown models must error (the paper excludes VGG as too large for the edge)")
	}
}

func TestSkipTuningIsSlower(t *testing.T) {
	eng := NewEngine()
	tuned, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	untuned, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{SkipTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.PredictedLatencyMs >= untuned.PredictedLatencyMs {
		t.Fatalf("tuned %.2f ms should beat untuned %.2f ms",
			tuned.PredictedLatencyMs, untuned.PredictedLatencyMs)
	}
}

func TestFallbackPlacement(t *testing.T) {
	eng := NewEngine()
	fb, err := eng.Compile("SSD_MobileNet1.0", DeepLens, CompileOptions{InputSize: 128, FallbackNMS: true})
	if err != nil {
		t.Fatal(err)
	}
	if fb.NodesOnCPU == 0 || fb.CopiesInserted == 0 {
		t.Fatalf("fallback should place ops on the CPU and insert copies, got %d/%d",
			fb.NodesOnCPU, fb.CopiesInserted)
	}
	all, err := eng.Compile("SSD_MobileNet1.0", DeepLens, CompileOptions{InputSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if all.NodesOnCPU != 0 {
		t.Fatal("default placement keeps everything on the GPU")
	}
	// The fallback graph still runs functionally.
	in := NewTensor(fb.InputShape()...)
	in.FillRandom(3)
	if _, err := fb.Run(in); err != nil {
		t.Fatal(err)
	}
}

func TestAiSageDefaultsTo300ForSSD(t *testing.T) {
	eng := NewEngine()
	cm, err := eng.Compile("SSD_ResNet50", AiSage, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.InputShape()[2]; got != 300 {
		t.Fatalf("aiSage SSD input = %d, want 300", got)
	}
}

// TestDeviceAttachedFaultInjector: a fault injector attached to the
// platform's GPU device reaches sessions automatically, degraded runs
// stay bit-identical to healthy ones, and the session pool sheds excess
// load with ErrOverloaded. The platform is copied so the shared globals
// stay pristine for other tests.
func TestDeviceAttachedFaultInjector(t *testing.T) {
	gpu := *DeepLens.GPU
	gpu.Faults = NewFaultInjector(FaultConfig{Seed: 9, Rate: 0.3, HangLatency: 20 * time.Microsecond})
	plat := &Platform{Name: "flaky-deeplens", GPU: &gpu, CPU: DeepLens.CPU}

	eng := NewEngine()
	healthy, err := eng.Compile("SqueezeNet1.0", DeepLens, CompileOptions{InputSize: 64, SkipTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := eng.Compile("SqueezeNet1.0", plat, CompileOptions{InputSize: 64, SkipTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	in := NewTensor(healthy.InputShape()...)
	in.FillRandom(17)
	want, err := healthy.Run(in)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := flaky.NewSessionWith(SessionOptions{RetryBackoff: 5 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.RunContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Faults.Total() == 0 {
		t.Fatal("device-attached injector never reached the session")
	}
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("degraded output differs from healthy at %d", i)
		}
	}

	pool, err := flaky.NewSessionPool(PoolOptions{
		Sessions: 2, QueueDepth: 2,
		Session: SessionOptions{RetryBackoff: 5 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Breaker() == nil {
		t.Fatal("fault-injected pool must install a shared breaker")
	}
	out, err := pool.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data() {
		if out.Data()[i] != v {
			t.Fatalf("pooled output differs from healthy at %d", i)
		}
	}

	// An already-cancelled context is shed before any node runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.Run(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pool run: got %v, want context.Canceled", err)
	}
	if _, err := sess.RunContext(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled session run: got %v, want context.Canceled", err)
	}
}

func TestPublicSurfaces(t *testing.T) {
	if len(ModelNames()) != 6 {
		t.Fatal("six evaluation models")
	}
	if len(Platforms()) != 3 {
		t.Fatal("three platforms")
	}
	for _, p := range Platforms() {
		if p.GPU == nil || p.CPU == nil {
			t.Fatal("platforms pair a GPU with a CPU")
		}
	}
}

// TestFleetServing: the public fleet compiles the model once per platform,
// routes by predicted latency, survives a scripted kill (drain to
// survivors, zero failures, bit-identical outputs), and the healed replica
// ramps back in and serves again.
func TestFleetServing(t *testing.T) {
	eng := NewEngine()
	fleet, err := eng.NewFleet("SqueezeNet1.0", CompileOptions{InputSize: 64}, FleetOptions{
		Heal:   HealPolicy{ProbeAfter: -1, RampSteps: 1, RampSuccesses: 1},
		Router: RouterOptions{EWMAAlpha: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if fleet.Len() != 3 {
		t.Fatalf("fleet has %d replicas, want the 3 paper platforms", fleet.Len())
	}
	if got := fleet.Name(0); got != "aws-deeplens-0" {
		t.Fatalf("replica 0 named %q, want aws-deeplens-0", got)
	}
	in := NewTensor(fleet.Model(0).InputShape()...)
	in.FillRandom(7)
	want, err := fleet.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	// Every replica, healthy or failed over, must reproduce this output
	// bit-identically.
	check := func(phase string) {
		t.Helper()
		out, err := fleet.Run(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		for i, v := range out.Data() {
			if v != want.Data()[i] {
				t.Fatalf("%s: output diverged at %d: %v != %v", phase, i, v, want.Data()[i])
			}
		}
	}
	check("healthy")

	// Kill whichever replica is serving, then verify traffic drains to the
	// survivors with no failures.
	victim := 0
	best := fleet.Stats()
	for i, st := range best {
		if st.Served > best[victim].Served {
			victim = i
		}
	}
	fleet.Kill(victim)
	for k := 0; k < 5; k++ {
		check("post-kill")
	}
	if st := fleet.State(victim); st != ReplicaQuarantined {
		t.Fatalf("victim state = %v, want quarantined", st)
	}

	if !fleet.HealNow(victim) {
		t.Fatal("HealNow failed")
	}
	served := fleet.Served(victim)
	for k := 0; k < 8; k++ {
		check("post-heal")
	}
	if fleet.Served(victim) <= served && fleet.State(victim) == ReplicaQuarantined {
		t.Fatal("healed replica never returned to service")
	}
	if len(fleet.Stats()) != 3 {
		t.Fatalf("stats rows = %d, want 3", len(fleet.Stats()))
	}
}
