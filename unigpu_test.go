package unigpu

import (
	"math"
	"testing"
)

func TestCompileAndRunClassification(t *testing.T) {
	eng := NewEngine()
	cm, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{InputSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if cm.PredictedLatencyMs <= 0 {
		t.Fatal("latency must be positive")
	}
	in := NewTensor(cm.InputShape()...)
	in.FillRandom(1)
	out, err := cm.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data() {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestCompileUnknownModel(t *testing.T) {
	if _, err := NewEngine().Compile("VGG", DeepLens, CompileOptions{}); err == nil {
		t.Fatal("unknown models must error (the paper excludes VGG as too large for the edge)")
	}
}

func TestSkipTuningIsSlower(t *testing.T) {
	eng := NewEngine()
	tuned, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	untuned, err := eng.Compile("SqueezeNet1.0", JetsonNano, CompileOptions{SkipTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.PredictedLatencyMs >= untuned.PredictedLatencyMs {
		t.Fatalf("tuned %.2f ms should beat untuned %.2f ms",
			tuned.PredictedLatencyMs, untuned.PredictedLatencyMs)
	}
}

func TestFallbackPlacement(t *testing.T) {
	eng := NewEngine()
	fb, err := eng.Compile("SSD_MobileNet1.0", DeepLens, CompileOptions{InputSize: 128, FallbackNMS: true})
	if err != nil {
		t.Fatal(err)
	}
	if fb.NodesOnCPU == 0 || fb.CopiesInserted == 0 {
		t.Fatalf("fallback should place ops on the CPU and insert copies, got %d/%d",
			fb.NodesOnCPU, fb.CopiesInserted)
	}
	all, err := eng.Compile("SSD_MobileNet1.0", DeepLens, CompileOptions{InputSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if all.NodesOnCPU != 0 {
		t.Fatal("default placement keeps everything on the GPU")
	}
	// The fallback graph still runs functionally.
	in := NewTensor(fb.InputShape()...)
	in.FillRandom(3)
	if _, err := fb.Run(in); err != nil {
		t.Fatal(err)
	}
}

func TestAiSageDefaultsTo300ForSSD(t *testing.T) {
	eng := NewEngine()
	cm, err := eng.Compile("SSD_ResNet50", AiSage, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.InputShape()[2]; got != 300 {
		t.Fatalf("aiSage SSD input = %d, want 300", got)
	}
}

func TestPublicSurfaces(t *testing.T) {
	if len(ModelNames()) != 6 {
		t.Fatal("six evaluation models")
	}
	if len(Platforms()) != 3 {
		t.Fatal("three platforms")
	}
	for _, p := range Platforms() {
		if p.GPU == nil || p.CPU == nil {
			t.Fatal("platforms pair a GPU with a CPU")
		}
	}
}
