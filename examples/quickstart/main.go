// Quickstart: compile a CNN for an integrated GPU, inspect the predicted
// latency, run a functional inference, and look at the unified IR emitting
// both CUDA and OpenCL from one schedule (Figure 1 end to end).
package main

import (
	"fmt"
	"log"

	"unigpu"
	"unigpu/internal/codegen"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
)

func main() {
	log.SetFlags(0)

	// 1. Compile MobileNet for the Jetson Nano's integrated Maxwell GPU.
	//    The engine folds batch norms, fuses activations, tunes every conv
	//    workload, and runs the graph tuner's layout DP.
	eng := unigpu.NewEngine()
	cm, err := eng.Compile("MobileNet1.0", unigpu.JetsonNano, unigpu.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MobileNet1.0 on %s: predicted %.2f ms "+
		"(conv kernels %.2f ms, layout transforms %.2f ms)\n",
		cm.Platform.Name, cm.PredictedLatencyMs, cm.ConvKernelMs, cm.TransformMs)

	// 2. Run a real inference (functional execution on the host).
	in := unigpu.NewTensor(cm.InputShape()...)
	in.FillRandom(7)
	out, err := cm.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	best, bestP := 0, float32(0)
	for c := 0; c < out.Shape()[1]; c++ {
		if p := out.At(0, c); p > bestP {
			best, bestP = c, p
		}
	}
	fmt.Printf("inference ok: top class %d with probability %.4f\n", best, bestP)

	// 3. One schedule, two backends: lower a tuned conv and emit both
	//    dialects from the same IR.
	w := ops.ConvWorkload{N: 1, CIn: 32, H: 112, W: 112, COut: 64,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cfg := templates.Config{TileCo: 16, TileH: 2, TileW: 8, VecW: 4, TileK: 2, UnrollKernel: true}
	kernel := templates.Schedule(w, cfg, sim.MaxwellNano)

	fmt.Printf("\nworkload %s, schedule %v\n", w.Key(), cfg)
	fmt.Printf("predicted: %.3f ms on %s, %.3f ms on %s, %.3f ms on %s\n",
		templates.CostMs(w, cfg, sim.MaxwellNano), sim.MaxwellNano.Name,
		templates.CostMs(w, cfg, sim.IntelHD505), sim.IntelHD505.Name,
		templates.CostMs(w, cfg, sim.MaliT860), sim.MaliT860.Name)

	fmt.Println("\n--- generated CUDA (Jetson Nano) ---")
	fmt.Println(firstLines(codegen.Emit(kernel, codegen.CUDA), 12))
	fmt.Println("--- generated OpenCL (Intel Graphics / Mali) ---")
	fmt.Println(firstLines(codegen.Emit(kernel, codegen.OpenCL), 12))
}

func firstLines(s string, n int) string {
	out, count := "", 0
	for _, line := range splitLines(s) {
		out += line + "\n"
		count++
		if count == n {
			out += "  ...\n"
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
