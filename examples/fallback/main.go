// Fallback: reproduce the §3.1.2 heterogeneous-execution experiment — run
// SSD (ResNet50 backbone) entirely on the DeepLens integrated GPU, then
// with NMS fallen back to the Atom CPU, and show the overhead is below
// half a percent. Also demonstrates the two-pass placement algorithm on a
// real graph.
package main

import (
	"fmt"
	"log"

	"unigpu"
	"unigpu/internal/bench"
)

func main() {
	log.SetFlags(0)
	eng := unigpu.NewEngine()

	// Placement, structurally: compile at a small size and inspect the
	// graph the two-pass algorithm produces.
	small, err := eng.Compile("SSD_ResNet50", unigpu.DeepLens,
		unigpu.CompileOptions{InputSize: 128, FallbackNMS: true})
	if err != nil {
		log.Fatal(err)
	}
	stats := small.GraphStats()
	fmt.Printf("two-pass placement: %d ops total, %d tagged CPU, %d device_copy nodes inserted\n",
		stats.Ops, stats.OnCPU, stats.Copies)

	in := unigpu.NewTensor(small.InputShape()...)
	in.FillRandom(5)
	if _, err := small.Run(in); err != nil {
		log.Fatal(err)
	}
	fmt.Println("heterogeneous graph executed functionally (GPU ops + CPU NMS + copies)")

	// The paper's measurement, at full 512x512 on the simulated DeepLens:
	// entire model on the integrated GPU vs NMS fallen back to the CPU.
	res := eng.Experiments().FallbackExperiment()
	fmt.Printf("\nSSD_ResNet50 on AWS DeepLens (512x512):\n")
	fmt.Printf("  all on integrated GPU : %8.2f ms   (paper: %.2f ms)\n", res.AllGPUMs, bench.PaperFallback.AllGPUMs)
	fmt.Printf("  NMS fallback to CPU   : %8.2f ms   (paper: %.2f ms)\n", res.FallbackMs, bench.PaperFallback.FallbackMs)
	fmt.Printf("  overhead              : %8.2f %%    (paper: <0.5%%)\n", res.OverheadPct)
	fmt.Println("\nWhy so cheap: the integrated GPU shares DRAM with the CPU, the NMS")
	fmt.Println("input is small (~100s of KB), and post-processing is off the critical")
	fmt.Println("compute path — which is what makes early adoption of new models with")
	fmt.Println("unsupported operators practical (§3.1.2).")
}
