// Object detection: run SSD end to end — backbone, multibox decode, and
// the optimized vision-specific operators of §3.1 (segmented sort + NMS) —
// and compare the vision pipeline against the naive GPU formulation on all
// three platforms (the Table 4 story).
package main

import (
	"fmt"
	"log"

	"unigpu"
	"unigpu/internal/bench"
	"unigpu/internal/models"
	"unigpu/internal/sim"
)

func main() {
	log.SetFlags(0)
	eng := unigpu.NewEngine()

	// Compile SSD-MobileNet at a reduced input so the functional pass is
	// quick; the latency prediction below uses the full 512x512 workload.
	cm, err := eng.Compile("SSD_MobileNet1.0", unigpu.JetsonNano, unigpu.CompileOptions{InputSize: 160})
	if err != nil {
		log.Fatal(err)
	}
	in := unigpu.NewTensor(cm.InputShape()...)
	in.FillRandom(11)
	out, err := cm.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSD_MobileNet1.0 ran end to end: %v detections tensor\n", out.Shape())
	fmt.Println("top detections [class score x1 y1 x2 y2]:")
	shown := 0
	for i := 0; i < out.Shape()[1] && shown < 5; i++ {
		if out.At(0, i, 0) < 0 {
			break
		}
		fmt.Printf("  %3.0f  %.3f  %6.3f %6.3f %6.3f %6.3f\n",
			out.At(0, i, 0), out.At(0, i, 1),
			out.At(0, i, 2), out.At(0, i, 3), out.At(0, i, 4), out.At(0, i, 5))
		shown++
	}

	// The §3.1 ablation: what the vision-specific operator optimizations
	// buy per platform at full input size.
	fmt.Println("\nvision-specific operator pipeline, SSD_MobileNet1.0 (full size):")
	fmt.Printf("%-22s %14s %14s %9s\n", "platform", "naive (ms)", "optimized (ms)", "gain")
	for _, p := range sim.Platforms() {
		size := models.DefaultInputSize("SSD_MobileNet1.0")
		if p == sim.AiSage {
			size = 300
		}
		m := models.Build("SSD_MobileNet1.0", size, true)
		naive := bench.NaiveVisionMs(m.Vision, p.GPU)
		opt := bench.OptimizedVisionMs(m.Vision, p.GPU)
		fmt.Printf("%-22s %14.2f %14.2f %8.1fx\n", p.Name, naive, opt, naive/opt)
	}
	fmt.Println("\nMali (no shared memory) gains the most — §4.3's observation.")
}
