// Tuning: walk through the machine-learning-based schedule search of
// §3.2.3 on one convolution workload — the config space, three search
// strategies at the same budget, the tuning-records database, and the
// graph tuner's layout trade-off.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"unigpu/internal/autotvm"
	"unigpu/internal/graphtuner"
	"unigpu/internal/ops"
	"unigpu/internal/sim"
	"unigpu/internal/templates"
)

func main() {
	log.SetFlags(0)
	w := ops.ConvWorkload{N: 1, CIn: 128, H: 28, W: 28, COut: 128,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	d := sim.MaliT860
	task := autotvm.Task{Workload: w, Device: d}

	space := templates.ConfigSpace(w, d)
	def := templates.CostMs(w, templates.DeviceDefaultConfig(w, d), d)
	fmt.Printf("workload %s on %s\n", w.Key(), d.Name)
	fmt.Printf("config space: %d schedules; default (untuned): %.3f ms\n\n", len(space), def)

	budget := 96
	for _, s := range []struct {
		name string
		fn   func(autotvm.Task, autotvm.Options) autotvm.Result
	}{
		{"random search     ", autotvm.RandomSearch},
		{"simulated annealing", autotvm.SimulatedAnnealing},
		{"GBT model-guided  ", autotvm.ModelGuidedSearch},
	} {
		res := s.fn(task, autotvm.Options{Budget: budget, Seed: 3})
		fmt.Printf("%s: %.3f ms (%.2fx over default, %d trials)  %v\n",
			s.name, res.Ms, def/res.Ms, res.Trials, res.Config)
	}

	// The records database: tune once, reuse forever (§3.2.3: searching a
	// model on a device took tens of hours on real edge hardware).
	dbPath := filepath.Join(os.TempDir(), "unigpu_example_records.json")
	db, err := autotvm.OpenDB(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	first := autotvm.Tune(task, autotvm.Options{Budget: budget, Seed: 3}, db)
	cached := autotvm.Tune(task, autotvm.Options{Budget: budget, Seed: 3}, db)
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndatabase: first Tune ran %d trials; second hit the cache (%.3f ms) -> %s\n",
		first.Trials, cached.Ms, dbPath)

	// Graph-level tuning: a conv chain where per-kernel optima disagree on
	// layout; the DP weighs kernel gains against transform overheads.
	chain := []ops.ConvWorkload{
		{N: 1, CIn: 3, H: 224, W: 224, COut: 32, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{N: 1, CIn: 32, H: 112, W: 112, COut: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 1, CIn: 64, H: 112, W: 112, COut: 64, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{N: 1, CIn: 64, H: 112, W: 112, COut: 128, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	}
	cands := make([][]graphtuner.Candidate, len(chain))
	for i, cw := range chain {
		cands[i] = graphtuner.CandidatesFor(cw, d, 24, 1)
	}
	dp := graphtuner.Optimize(chain, cands, d)
	greedy := graphtuner.Greedy(chain, cands, d)
	fmt.Printf("\ngraph tuner on a %d-conv chain:\n", len(chain))
	fmt.Printf("  greedy (best kernel each): %.3f ms total (%d transforms, %.3f ms in transforms)\n",
		greedy.TotalMs, greedy.TransformCnt, greedy.TransformMs)
	fmt.Printf("  DP (layout-aware):         %.3f ms total (%d transforms, %.3f ms in transforms)\n",
		dp.TotalMs, dp.TransformCnt, dp.TransformMs)
	for i, c := range dp.Choices {
		fmt.Printf("    conv %d -> layout NCHW%dc, schedule %v (%.3f ms)\n", i, c.Block, c.Config, c.KernelMs)
	}
}
